// Differential cluster checks: the distributed counterpart of the
// resilience harness. CheckClusterEquivalence proves the tentpole
// property of internal/cluster — a job mined by a coordinator/worker
// fleet is byte-identical to a local run — and that the equivalence
// survives injected worker faults: a worker panicking mid-shard (its
// partial checkpoint reschedules onto another worker, which resumes
// rather than restarts) and a worker dropping connections outright.
package difftest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/disc-mining/disc/internal/cluster"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
)

// clusterConfigs are the shardable engine configurations the cluster
// grid exercises (the cluster path only dispatches the disc-all family).
func clusterConfigs() []resilienceConfig {
	return []resilienceConfig{
		{
			name: "disc-all",
			opts: core.Options{BiLevel: true, Levels: 2},
			mk:   func(o core.Options) mining.ContextMiner { return &core.Miner{Opts: o} },
		},
		{
			name: "dynamic-disc-all",
			opts: core.Options{BiLevel: true, Gamma: 0.5},
			mk:   func(o core.Options) mining.ContextMiner { return &core.Dynamic{Opts: o} },
		},
	}
}

// clusterFleet starts n in-process shard workers, the i-th armed with
// faults[i] (nil entries are healthy), and returns their URLs plus a
// shutdown function.
func clusterFleet(n int, faults map[int]*faultinject.Injector) (urls []string, shutdown func()) {
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(cluster.WorkerConfig{MaxConcurrent: 8, Faults: faults[i]})
		mux := http.NewServeMux()
		mux.HandleFunc("POST /cluster/shard", w.HandleShard)
		srv := httptest.NewServer(mux)
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	return urls, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// CheckClusterEquivalence mines db on a three-worker fleet in three
// regimes — healthy, one worker panicking mid-shard at a seed-derived
// partition, one worker dropping connections — and requires every
// clustered result to be byte-identical to the local run. The mid-shard
// panic must have been rescheduled (the coordinator's retried counter
// moves) and the received partitions must have landed in the job's
// checkpointer, proving the reschedule resumed from checkpointed work.
func CheckClusterEquivalence(db mining.Database, minSup int, seed int64) error {
	const shards = 3
	for _, cfg := range clusterConfigs() {
		straight, err := cfg.mk(cfg.opts).MineContext(context.Background(), db, minSup)
		if err != nil {
			return fmt.Errorf("%s: local run failed: %w", cfg.name, err)
		}
		want := render(straight)
		req := jobs.Request{Algo: cfg.name, MinSup: minSup, Opts: cfg.opts, DB: db}

		regimes := []struct {
			name   string
			faults map[int]*faultinject.Injector
			fired  func(map[int]*faultinject.Injector) int
		}{
			{name: "healthy"},
			{
				// Worker 0 panics inside the engine mid-shard: its reply is
				// a typed error plus the partitions completed so far, and
				// the reschedule resumes from them.
				name: "panic-mid-shard",
				faults: map[int]*faultinject.Injector{0: faultinject.New(seed).
					Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 1 + int(seed%5)})},
				fired: func(f map[int]*faultinject.Injector) int {
					return f[0].Fired(faultinject.WorkerPanic)
				},
			},
			{
				// Worker 0 aborts connections before mining: the
				// coordinator sees transport errors and reroutes.
				name: "drop-connections",
				faults: map[int]*faultinject.Injector{0: faultinject.New(seed).
					Arm(faultinject.ShardDrop, faultinject.Spec{Prob: 1})},
				fired: func(f map[int]*faultinject.Injector) int {
					return f[0].Fired(faultinject.ShardDrop)
				},
			},
		}
		for _, reg := range regimes {
			urls, shutdown := clusterFleet(3, reg.faults)
			coord := cluster.New(cluster.Config{
				Peers: urls, Shards: shards,
				ShardTimeout: time.Minute, Cooldown: time.Millisecond,
			})
			cp := core.NewCheckpointer()
			res, err := coord.Mine(context.Background(), req, cp)
			shutdown()
			if err != nil {
				return fmt.Errorf("%s/%s seed=%d: clustered run failed: %w", cfg.name, reg.name, seed, err)
			}
			if got := render(res); got != want {
				return fmt.Errorf("%s/%s seed=%d: clustered result differs from local run:\n%s",
					cfg.name, reg.name, seed, straight.Diff(res))
			}
			if cp.Completed() == 0 && straight.Len() > 0 {
				return fmt.Errorf("%s/%s seed=%d: no received partitions recorded in the job checkpointer",
					cfg.name, reg.name, seed)
			}
			if reg.fired != nil && reg.fired(reg.faults) > 0 && coord.ShardRetries() == 0 {
				return fmt.Errorf("%s/%s seed=%d: fault fired on worker 0 but the coordinator never rescheduled",
					cfg.name, reg.name, seed)
			}
		}
	}
	return nil
}
