package difftest

import (
	"testing"
)

// TestClusterChaosGrid: across the sampled grid, a fleet survives its
// own coordinator — an injected coordinator crash resumed from the
// durable shard ledger, a registered worker whose heartbeat TTL expires
// while it holds a shard, and a straggler that forces a hedged dispatch
// — and every regime stays byte-identical to a local run while proving
// its fault actually fired. This is the `make chaos` harness; CI runs
// it under -race.
func TestClusterChaosGrid(t *testing.T) {
	for _, c := range clusterGrid(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			db, minSup := gridDB(t, c)
			if err := CheckClusterChaos(db, minSup, c.Config.Seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}
