package difftest

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// TestDifferentialGrid is the main harness run: every grid database is
// mined with every variant and all result sets must agree (with the
// exhaustive oracle as reference where feasible) and satisfy the result
// invariants. Short mode samples the grid so `go test -race -short` stays
// fast; CI runs the full grid.
func TestDifferentialGrid(t *testing.T) {
	cases := Grid()
	if !testing.Short() && len(cases) < 100 {
		t.Fatalf("grid has %d databases, want at least 100", len(cases))
	}
	if testing.Short() {
		sampled := make([]Case, 0, len(cases)/8+1)
		for i := 0; i < len(cases); i += 8 {
			sampled = append(sampled, cases[i])
		}
		cases = sampled
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			db, err := gen.Generate(c.Config)
			if err != nil {
				t.Fatal(err)
			}
			if c.Mutate {
				db = gen.Mutate(rand.New(rand.NewSource(c.Config.Seed)), db)
			}
			if len(db) == 0 {
				t.Skip("mutated to empty")
			}
			minSup := mining.AbsSupport(c.Frac, len(db))
			if mis := Check(db, minSup); mis != nil {
				vs := failingPair(mis)
				shrunk := Shrink(mis.DB, func(d mining.Database) bool {
					return len(d) > 0 && CheckVariants(d, minSup, vs) != nil
				})
				t.Fatalf("%v\nshrunk counterexample (%d customers):\n%s",
					mis, len(shrunk), Counterexample(shrunk))
			}
		})
	}
}

// failingPair narrows the variant list to the configurations named by a
// mismatch, so the shrinking predicate re-runs two miners instead of the
// whole matrix.
func failingPair(mis *Mismatch) []Variant {
	var vs []Variant
	for _, v := range Variants() {
		if v.Name == mis.Ref || v.Name == mis.Got {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 { // reference was the oracle: keep the failing variant only
		return Variants()
	}
	return vs
}

// offByOne wraps a correct miner with the classic threshold bug: the
// support test uses > instead of >=, silently dropping every pattern at
// exactly minSup. The harness must catch it and shrink the witness.
type offByOne struct{ inner mining.Miner }

func (o offByOne) Name() string { return o.inner.Name() + "+off-by-one" }

func (o offByOne) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	res, err := o.inner.Mine(db, minSup)
	if err != nil {
		return nil, err
	}
	out := mining.NewResult()
	for _, pc := range res.Sorted() {
		if pc.Support == minSup {
			continue
		}
		out.Add(pc.Pattern, pc.Support)
	}
	return out, nil
}

// TestInjectedOffByOneIsCaughtAndShrunk: seeding the variant list with a
// deliberately broken miner must produce a mismatch, and Shrink must
// reduce the witness database to the theoretical minimum — minSup
// customers of one identical item each (any pattern needs minSup
// customers to be frequent, and a fixpoint of single-item drops cannot
// hold a longer witness).
func TestInjectedOffByOneIsCaughtAndShrunk(t *testing.T) {
	db, err := gen.Generate(gen.Config{
		NCust: 30, SLen: 3, TLen: 1.5, NItems: 10,
		SeqPatLen: 2, NSeqPatterns: 20, NLitPatterns: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	minSup := mining.AbsSupport(0.15, len(db))
	vs := []Variant{
		{Name: "disc-all", New: func() mining.Miner { return core.New() }},
		{Name: "disc-all+off-by-one", New: func() mining.Miner { return offByOne{core.New()} }},
	}
	mis := CheckVariants(db, minSup, vs)
	if mis == nil {
		t.Fatal("harness did not catch the injected off-by-one")
	}
	if mis.Got != "disc-all+off-by-one" && mis.Ref != "disc-all+off-by-one" {
		t.Fatalf("mismatch blames %q vs %q", mis.Ref, mis.Got)
	}
	fail := func(d mining.Database) bool {
		return len(d) > 0 && CheckVariants(d, minSup, vs) != nil
	}
	shrunk := Shrink(mis.DB, fail)
	if !fail(shrunk) {
		t.Fatal("shrunk database no longer reproduces the mismatch")
	}
	if len(shrunk) != minSup {
		t.Errorf("shrunk to %d customers, want exactly minsup=%d", len(shrunk), minSup)
	}
	if got := shrunk.TotalItems(); got != minSup {
		t.Errorf("shrunk database has %d items, want %d (one per customer)", got, minSup)
	}
	// The counterexample is valid native format round-tripping to the same
	// database.
	text := Counterexample(shrunk)
	back, err := data.Read(strings.NewReader(text), data.Native)
	if err != nil {
		t.Fatalf("counterexample does not parse: %v\n%s", err, text)
	}
	if len(back) != len(shrunk) {
		t.Fatalf("counterexample round-trip: %d customers, want %d", len(back), len(shrunk))
	}
	for i := range back {
		if seq.Compare(back[i].Pattern(), shrunk[i].Pattern()) != 0 {
			t.Errorf("counterexample customer %d differs after round-trip", i)
		}
	}
}

// TestCheckInvariantsRejectsBadResults: each invariant clause actually
// fires.
func TestCheckInvariantsRejectsBadResults(t *testing.T) {
	p2 := seq.MustParsePattern("(1)(2)")
	p1a, p1b := seq.MustParsePattern("(1)"), seq.MustParsePattern("(2)")

	good := mining.NewResult()
	good.Add(p1a, 3)
	good.Add(p1b, 2)
	good.Add(p2, 2)
	if err := CheckInvariants(good, 2, 4); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}

	below := mining.NewResult()
	below.Add(p1a, 1)
	if err := CheckInvariants(below, 2, 4); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("support below minsup not caught: %v", err)
	}

	above := mining.NewResult()
	above.Add(p1a, 5)
	if err := CheckInvariants(above, 2, 4); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("support above database size not caught: %v", err)
	}

	open := mining.NewResult()
	open.Add(p2, 2)
	open.Add(p1a, 3) // (2) missing
	if err := CheckInvariants(open, 2, 4); err == nil || !strings.Contains(err.Error(), "downward closure") {
		t.Errorf("missing subsequence not caught: %v", err)
	}

	anti := mining.NewResult()
	anti.Add(p2, 3)
	anti.Add(p1a, 3)
	anti.Add(p1b, 2) // subsequence with lower support than the superpattern
	if err := CheckInvariants(anti, 2, 4); err == nil || !strings.Contains(err.Error(), "anti-monotonicity") {
		t.Errorf("anti-monotonicity violation not caught: %v", err)
	}
}

// TestVariantsCoverTheMatrix: the option matrix promised by the harness
// is really present.
func TestVariantsCoverTheMatrix(t *testing.T) {
	names := map[string]bool{}
	for _, v := range Variants() {
		if names[v.Name] {
			t.Errorf("duplicate variant %q", v.Name)
		}
		names[v.Name] = true
	}
	for _, want := range []string{
		"disc-all", "dynamic-disc-all", "gsp", "spade", "spam",
		"prefixspan", "pseudo", "levelwise", "gsp[nohashtree]",
		"disc-all[bilevel=false,levels=-1,workers=1]",
		"disc-all[bilevel=true,levels=2,workers=1]",
		"dynamic-disc-all[gamma=0,workers=1]",
		"dynamic-disc-all[gamma=1.5,workers=1]",
	} {
		if !names[want] {
			t.Errorf("variant %q missing (have %d variants)", want, len(names))
		}
	}
}

// TestMutateIsDeterministicAndCanonical: Mutate must be reproducible for
// a fixed seed and must only emit canonical customer sequences.
func TestMutateIsDeterministicAndCanonical(t *testing.T) {
	db, err := gen.Generate(gen.Config{NCust: 20, SLen: 3, TLen: 2, NItems: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := gen.Mutate(rand.New(rand.NewSource(11)), db)
	b := gen.Mutate(rand.New(rand.NewSource(11)), db)
	if len(a) != len(b) {
		t.Fatalf("same seed, different sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if seq.Compare(a[i].Pattern(), b[i].Pattern()) != 0 {
			t.Fatalf("same seed, customer %d differs", i)
		}
	}
	for _, cs := range a {
		if cs.Len() == 0 {
			t.Error("empty customer emitted")
		}
		for ti := 0; ti < cs.NTrans(); ti++ {
			tx := cs.Transaction(ti)
			for j := 1; j < len(tx); j++ {
				if tx[j-1] >= tx[j] {
					t.Fatalf("non-canonical transaction %v", tx)
				}
			}
		}
	}
	// The original database is untouched.
	orig, _ := gen.Generate(gen.Config{NCust: 20, SLen: 3, TLen: 2, NItems: 15, Seed: 3})
	for i := range db {
		if seq.Compare(db[i].Pattern(), orig[i].Pattern()) != 0 {
			t.Fatalf("Mutate modified its input (customer %d)", i)
		}
	}
}
