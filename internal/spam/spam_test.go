package spam

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func buildLayout(sizes ...int32) *layout {
	l := &layout{offsets: make([]int32, len(sizes)+1)}
	total := int32(0)
	for i, s := range sizes {
		l.offsets[i] = total
		total += s
	}
	l.offsets[len(sizes)] = total
	l.words = int(total+63) / 64
	l.bitCust = make([]int32, total)
	for c := range sizes {
		for i := l.offsets[c]; i < l.offsets[c+1]; i++ {
			l.bitCust[i] = int32(c)
		}
	}
	return l
}

func TestSTransform(t *testing.T) {
	// Three customers with 3, 4 and 2 transactions.
	l := buildLayout(3, 4, 2)
	src := l.newBitmap()
	// Customer 0: first set bit at slot 0 -> bits 1,2 set.
	src.set(0)
	src.set(2)
	// Customer 1: first set bit at slot 5 (its transaction 2) -> bit 6 set.
	src.set(5)
	// Customer 2: no bits -> nothing set.
	dst := l.newBitmap()
	l.sTransform(dst, src)
	wantSet := map[int32]bool{1: true, 2: true, 6: true}
	for i := int32(0); i < 9; i++ {
		got := dst[i>>6]&(1<<(uint(i)&63)) != 0
		if got != wantSet[i] {
			t.Errorf("bit %d = %v, want %v", i, got, wantSet[i])
		}
	}
}

func TestSTransformSpansWords(t *testing.T) {
	// One customer spanning two 64-bit words: first set bit near the end
	// of word 0 must set bits across the boundary.
	l := buildLayout(100)
	src := l.newBitmap()
	src.set(62)
	dst := l.newBitmap()
	l.sTransform(dst, src)
	for i := int32(0); i < 100; i++ {
		want := i >= 63
		got := dst[i>>6]&(1<<(uint(i)&63)) != 0
		if got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestSupportCountsCustomersNotBits(t *testing.T) {
	l := buildLayout(3, 3, 3)
	b := l.newBitmap()
	b.set(0)
	b.set(1)
	b.set(2) // all in customer 0
	b.set(7) // customer 2
	if got := l.support(b); got != 2 {
		t.Errorf("support = %d, want 2", got)
	}
	if got := l.support(l.newBitmap()); got != 0 {
		t.Errorf("support of empty bitmap = %d", got)
	}
}

func TestGreaterThan(t *testing.T) {
	items := []seq.Item{2, 5, 9}
	if got := greaterThan(items, 1); len(got) != 3 {
		t.Errorf("greaterThan(1) = %v", got)
	}
	if got := greaterThan(items, 5); len(got) != 1 || got[0] != 9 {
		t.Errorf("greaterThan(5) = %v", got)
	}
	if got := greaterThan(items, 9); got != nil {
		t.Errorf("greaterThan(9) = %v", got)
	}
}

func TestTable1Golden(t *testing.T) {
	db := testutil.Table1()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, 2)
}

func TestTable6Golden(t *testing.T) {
	db := testutil.Table6()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, 3)
}

func TestRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 60; i++ {
		db := testutil.RandomDB(r, 6+r.Intn(8), 5, 4, 3)
		minSup := 1 + r.Intn(4)
		ref, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, minSup)
	}
}

func TestSkewedAgainstLevelWise(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 8; i++ {
		db := testutil.SkewedRandomDB(r, 60, 12, 6, 4)
		minSup := 3 + r.Intn(6)
		ref, err := bruteforce.LevelWise{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, minSup)
	}
}

func TestDegenerate(t *testing.T) {
	res, err := Miner{}.Mine(nil, 1)
	if err != nil || res.Len() != 0 {
		t.Errorf("empty db: %v, %d", err, res.Len())
	}
	db := mining.Database{seq.MustParseCustomerSeq(1, "(a)")}
	res, err = Miner{}.Mine(db, 1)
	if err != nil || res.Len() != 1 {
		t.Errorf("singleton db: %v, %d", err, res.Len())
	}
}
