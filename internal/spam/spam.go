// Package spam implements the SPAM algorithm of Ayres, Flannick, Gehrke &
// Yiu (KDD 2002), one of the baselines summarized in §1.1 of Chiu, Wu &
// Chen (ICDE 2004). Every pattern carries a vertical bitmap with one bit
// per (customer, transaction) slot, set when an occurrence of the pattern
// ends in that transaction. An s-extension first applies the S-step
// transform (per customer: set every bit strictly after the first set bit)
// and then ANDs the item's bitmap; an i-extension ANDs directly. The
// depth-first search passes pruned candidate lists down the tree, which is
// SPAM's version of anti-monotone candidate pruning.
//
// SPAM assumes all bitmaps fit in main memory (the paper's stated
// assumption); this implementation keeps one bitmap per live tree path and
// per surviving candidate.
package spam

import (
	"math/bits"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Miner is the SPAM miner.
type Miner struct{}

func init() {
	mining.Register("spam", func() mining.Miner { return Miner{} })
}

// Name implements mining.Miner.
func (Miner) Name() string { return "spam" }

// layout maps (customer, transaction) pairs to bit positions.
type layout struct {
	offsets []int32 // offsets[c] = first bit of customer c; len = ncust+1
	bitCust []int32 // bit -> customer index
	words   int
}

type bitmap []uint64

func (l *layout) newBitmap() bitmap { return make(bitmap, l.words) }

func (b bitmap) set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// and sets dst = a & b.
func and(dst, a, b bitmap) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// support counts the customers with at least one set bit.
func (l *layout) support(b bitmap) int {
	n := 0
	last := int32(-1)
	for w, word := range b {
		for word != 0 {
			bit := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			if c := l.bitCust[bit]; c != last {
				last = c
				n++
			}
		}
	}
	return n
}

// sTransform writes into dst the S-step transform of src: per customer,
// every bit strictly after the customer's first set bit is set. It walks
// the set bits of src (skipping empty customers wholesale) and fills each
// matched customer's tail region.
func (l *layout) sTransform(dst, src bitmap) {
	for i := range dst {
		dst[i] = 0
	}
	last := int32(-1) // last customer already handled
	for w, word := range src {
		for word != 0 {
			bit := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			c := l.bitCust[bit]
			if c == last {
				continue // only the first set bit per customer matters
			}
			last = c
			for i := bit + 1; i < l.offsets[c+1]; i++ {
				dst.set(i)
			}
		}
	}
}

// Mine implements mining.Miner.
func (Miner) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	res := mining.NewResult()
	maxItem := db.MaxItem()

	// Layout and frequent items.
	l := &layout{offsets: make([]int32, len(db)+1)}
	total := int32(0)
	for c, cs := range db {
		l.offsets[c] = total
		total += int32(cs.NTrans())
	}
	l.offsets[len(db)] = total
	l.words = int(total+63) / 64
	l.bitCust = make([]int32, total)
	for c := range db {
		for i := l.offsets[c]; i < l.offsets[c+1]; i++ {
			l.bitCust[i] = int32(c)
		}
	}

	sup := make([]int, maxItem+1)
	seen := make([]bool, maxItem+1)
	var scratch []seq.Item
	for _, cs := range db {
		scratch = cs.DistinctItems(scratch[:0], seen)
		for _, it := range scratch {
			sup[it]++
		}
	}
	var f1 []seq.Item
	itemBM := make([]bitmap, maxItem+1)
	for x := seq.Item(1); x <= maxItem; x++ {
		if sup[x] >= minSup {
			f1 = append(f1, x)
			itemBM[x] = l.newBitmap()
		}
	}
	for c, cs := range db {
		for t := 0; t < cs.NTrans(); t++ {
			for _, x := range cs.Transaction(t) {
				if itemBM[x] != nil {
					itemBM[x].set(l.offsets[c] + int32(t))
				}
			}
		}
	}

	m := &spamMiner{l: l, minSup: minSup, res: res, itemBM: itemBM}
	for _, x := range f1 {
		res.Add(seq.NewPattern(seq.Itemset{x}), sup[x])
		var icand []seq.Item
		for _, y := range f1 {
			if y > x {
				icand = append(icand, y)
			}
		}
		m.mine(seq.NewPattern(seq.Itemset{x}), itemBM[x], f1, icand)
	}
	return res, nil
}

type spamMiner struct {
	l      *layout
	minSup int
	res    *mining.Result
	itemBM []bitmap
}

// mine explores the children of (p, bm). scand and icand are the pruned
// s- and i-candidate item lists inherited from the parent.
func (m *spamMiner) mine(p seq.Pattern, bm bitmap, scand, icand []seq.Item) {
	// S-step: one shared transform, then an AND per candidate.
	var sSurv []seq.Item
	var sBM []bitmap
	if len(scand) > 0 {
		trans := m.l.newBitmap()
		m.l.sTransform(trans, bm)
		for _, y := range scand {
			nb := m.l.newBitmap()
			and(nb, trans, m.itemBM[y])
			if s := m.l.support(nb); s >= m.minSup {
				m.res.Add(p.ExtendS(y), s)
				sSurv = append(sSurv, y)
				sBM = append(sBM, nb)
			}
		}
	}
	// I-step.
	var iSurv []seq.Item
	var iBM []bitmap
	for _, y := range icand {
		nb := m.l.newBitmap()
		and(nb, bm, m.itemBM[y])
		if s := m.l.support(nb); s >= m.minSup {
			m.res.Add(p.ExtendI(y), s)
			iSurv = append(iSurv, y)
			iBM = append(iBM, nb)
		}
	}
	// Recurse: s-children inherit (sSurv, sSurv>y); i-children inherit
	// (sSurv, iSurv>y).
	for i, y := range sSurv {
		m.mine(p.ExtendS(y), sBM[i], sSurv, greaterThan(sSurv, y))
	}
	for i, y := range iSurv {
		m.mine(p.ExtendI(y), iBM[i], sSurv, greaterThan(iSurv, y))
	}
}

func greaterThan(items []seq.Item, y seq.Item) []seq.Item {
	for i, x := range items {
		if x > y {
			return items[i:]
		}
	}
	return nil
}
