// Package bruteforce provides two deliberately simple, obviously correct
// sequence miners used as ground truth by the cross-algorithm integration
// tests:
//
//   - Exhaustive enumerates every distinct subsequence of every customer
//     sequence and tallies supports in a map. Exponential; tiny inputs only.
//   - LevelWise grows frequent k-sequences by single-item i-/s-extensions
//     and counts every candidate with a full containment scan. Polynomial
//     per level and usable on small benchmark databases.
package bruteforce

import (
	"github.com/disc-mining/disc/internal/kmin"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Exhaustive is the enumeration oracle. MaxLen bounds the pattern length
// (0 means unbounded).
type Exhaustive struct {
	MaxLen int
}

// Name implements mining.Miner.
func (Exhaustive) Name() string { return "exhaustive" }

// Mine implements mining.Miner by brute-force enumeration.
func (e Exhaustive) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	type entry struct {
		pattern seq.Pattern
		count   int
	}
	counts := map[string]*entry{}
	for _, cs := range db {
		limit := cs.Len()
		if e.MaxLen > 0 && e.MaxLen < limit {
			limit = e.MaxLen
		}
		for k := 1; k <= limit; k++ {
			// AllKSubsequences returns each distinct k-subsequence once per
			// customer, so incrementing here counts customers, not
			// occurrences.
			for _, p := range kmin.AllKSubsequences(cs, k) {
				key := p.Key()
				if en, ok := counts[key]; ok {
					en.count++
				} else {
					counts[key] = &entry{pattern: p, count: 1}
				}
			}
		}
	}
	res := mining.NewResult()
	for _, en := range counts {
		if en.count >= minSup {
			res.Add(en.pattern, en.count)
		}
	}
	return res, nil
}

// LevelWise is the naive generate-and-count miner. It is registered as a
// production algorithm; Exhaustive is not (its cost is exponential in the
// customer length), so the differential harness names it explicitly as the
// oracle on small inputs.
type LevelWise struct{}

func init() {
	mining.Register("levelwise", func() mining.Miner { return LevelWise{} })
}

// Name implements mining.Miner.
func (LevelWise) Name() string { return "levelwise" }

// Mine implements mining.Miner by candidate extension and containment
// counting.
func (LevelWise) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	res := mining.NewResult()
	maxItem := db.MaxItem()

	// Frequent 1-sequences.
	sup := make([]int, maxItem+1)
	seen := make([]bool, maxItem+1)
	var scratch []seq.Item
	for _, cs := range db {
		scratch = cs.DistinctItems(scratch[:0], seen)
		for _, it := range scratch {
			sup[it]++
		}
	}
	var freqItems []seq.Item
	var cur []seq.Pattern
	for it := seq.Item(1); it <= maxItem; it++ {
		if sup[it] >= minSup {
			freqItems = append(freqItems, it)
			p := seq.NewPattern(seq.Itemset{it})
			res.Add(p, sup[it])
			cur = append(cur, p)
		}
	}

	for len(cur) > 0 {
		var next []seq.Pattern
		for _, p := range cur {
			for _, x := range freqItems {
				if s, n := countSupport(db, p.ExtendS(x), minSup); n {
					res.Add(p.ExtendS(x), s)
					next = append(next, p.ExtendS(x))
				}
				if x > p.LastItem() {
					if s, n := countSupport(db, p.ExtendI(x), minSup); n {
						res.Add(p.ExtendI(x), s)
						next = append(next, p.ExtendI(x))
					}
				}
			}
		}
		cur = next
	}
	return res, nil
}

func countSupport(db mining.Database, p seq.Pattern, minSup int) (int, bool) {
	sup := 0
	for i, cs := range db {
		if sup+(len(db)-i) < minSup {
			return 0, false // cannot reach the threshold anymore
		}
		if cs.Contains(p) {
			sup++
		}
	}
	return sup, sup >= minSup
}
