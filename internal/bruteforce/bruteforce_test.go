package bruteforce

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestFrequent1SequencesTable1 reproduces the §1.1 PrefixSpan walkthrough:
// with minimum support count 2, the frequent 1-sequences of Table 1 are
// <(a)>, <(b)>, <(e)>, <(f)>, <(g)> and <(h)>.
func TestFrequent1SequencesTable1(t *testing.T) {
	res, err := Exhaustive{}.Mine(testutil.Table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"<(a)>": 2, "<(b)>": 4, "<(e)>": 2, "<(f)>": 4, "<(g)>": 3, "<(h)>": 2,
	}
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() != 1 {
			continue
		}
		w, ok := want[pc.Pattern.Letters()]
		if !ok {
			t.Errorf("unexpected frequent 1-sequence %s", pc.Pattern.Letters())
			continue
		}
		if pc.Support != w {
			t.Errorf("%s support = %d, want %d", pc.Pattern.Letters(), pc.Support, w)
		}
		delete(want, pc.Pattern.Letters())
	}
	for p := range want {
		t.Errorf("missing frequent 1-sequence %s", p)
	}
}

// TestSPADEExampleSupport verifies the §1.1 SPADE example: <(a, g)(h)(f)>
// has support 2 in Table 1.
func TestSPADEExampleSupport(t *testing.T) {
	res, err := Exhaustive{}.Mine(testutil.Table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(seq.MustParsePattern("(a, g)(h)(f)")); !ok || sup != 2 {
		t.Errorf("support of <(a, g)(h)(f)> = %d,%v want 2,true", sup, ok)
	}
}

// TestTable3Minimum verifies Example 1.1: <(a)(b)(b)> is frequent in
// Table 1 with support exactly 2.
func TestTable3Minimum(t *testing.T) {
	res, err := Exhaustive{}.Mine(testutil.Table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(seq.MustParsePattern("(a)(b)(b)")); !ok || sup != 2 {
		t.Errorf("support of <(a)(b)(b)> = %d,%v want 2,true", sup, ok)
	}
}

// TestExample31Patterns verifies the §3.1 Example 3.1 claims on Table 6
// with δ=3: every 1-sequence except <(d)> is frequent, and <(a, e)> and
// <(a)(g, h)> are frequent sequences containing a as the first item.
func TestExample31Patterns(t *testing.T) {
	res, err := Exhaustive{}.Mine(testutil.Table6(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for it := seq.Item(1); it <= 8; it++ {
		p := seq.NewPattern(seq.Itemset{it})
		_, ok := res.Support(p)
		if it == 4 { // d
			if ok {
				t.Errorf("<(d)> should not be frequent")
			}
			continue
		}
		if !ok {
			t.Errorf("%s should be frequent", p.Letters())
		}
	}
	for _, s := range []string{"(a, e)", "(a)(g, h)"} {
		if _, ok := res.Support(seq.MustParsePattern(s)); !ok {
			t.Errorf("%s should be frequent", s)
		}
	}
}

// TestFigure3CountingArray verifies the support counts in Figure 3: the
// 2-sequences with prefix a in Table 6 under δ=3. Two cells of the printed
// figure are arithmetic slips: (_g) is 7, not 6 ({a,g} occurs in a
// transaction of every one of CIDs 1-7), and (_h) is 4, not 5 ({a,h}
// co-occurs only in CIDs 1, 3, 4 and 6). Both slips are on the same side
// of δ=3, so the paper's frequent/non-frequent classification — "only
// <(a)(b)>, <(a)(d)>, <(a)(f)>, <(ab)>, <(ac)>, <(ad)> are not frequent" —
// is reproduced exactly.
func TestFigure3CountingArray(t *testing.T) {
	res, err := Exhaustive{}.Mine(testutil.Table6(), 1) // keep all counts
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"<(a)(a)>": 6, "<(a)(c)>": 4, "<(a)(d)>": 1, "<(a)(e)>": 5,
		"<(a)(f)>": 1, "<(a)(g)>": 6, "<(a)(h)>": 5,
		"<(a, c)>": 2, "<(a, d)>": 1, "<(a, e)>": 5, "<(a, f)>": 3,
		"<(a, g)>": 7, "<(a, h)>": 4,
	}
	for s, w := range want {
		sup, ok := res.Support(seq.MustParsePattern(s))
		if !ok && w > 0 {
			t.Errorf("%s missing (want support %d)", s, w)
			continue
		}
		if sup != w {
			t.Errorf("%s support = %d, want %d", s, sup, w)
		}
	}
	// Figure 3 zero/empty cells: <(a)(b)> support 0 and <(a, b)> support 1.
	if _, ok := res.Support(seq.MustParsePattern("(a)(b)")); ok {
		t.Errorf("<(a)(b)> should have support 0")
	}
	if sup, _ := res.Support(seq.MustParsePattern("(a, b)")); sup != 1 {
		t.Errorf("<(a, b)> support = %d, want 1", sup)
	}
}

// TestLevelWiseMatchesExhaustive is the first differential pairing: the
// two independent baselines must produce identical result sets.
func TestLevelWiseMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		db := testutil.RandomDB(r, 6+r.Intn(6), 5, 4, 3)
		minSup := 1 + r.Intn(4)
		ref, err := Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{LevelWise{}}, db, minSup)
	}
}

func TestExhaustiveMaxLen(t *testing.T) {
	db := testutil.Table1()
	res, err := Exhaustive{MaxLen: 2}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen() > 2 {
		t.Errorf("MaxLen bound violated: %d", res.MaxLen())
	}
	full, _ := Exhaustive{}.Mine(db, 2)
	for _, pc := range full.Sorted() {
		if pc.Pattern.Len() > 2 {
			continue
		}
		if sup, ok := res.Support(pc.Pattern); !ok || sup != pc.Support {
			t.Errorf("bounded result disagrees on %s", pc.Pattern.Letters())
		}
	}
}

func TestEmptyAndDegenerateDatabases(t *testing.T) {
	for _, m := range []mining.Miner{Exhaustive{}, LevelWise{}} {
		res, err := m.Mine(nil, 1)
		if err != nil {
			t.Fatalf("%s on empty db: %v", m.Name(), err)
		}
		if res.Len() != 0 {
			t.Errorf("%s on empty db found %d patterns", m.Name(), res.Len())
		}
		// minSup above the database size yields nothing.
		res, err = m.Mine(testutil.Table1(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 0 {
			t.Errorf("%s with minSup 5 found %d patterns", m.Name(), res.Len())
		}
	}
}
