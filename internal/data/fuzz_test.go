package data

import (
	"errors"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

// FuzzRead throws arbitrary text at the auto-detecting reader: it must
// never panic, and anything it accepts must survive a write/read round
// trip unchanged.
func FuzzRead(f *testing.F) {
	f.Add("1: (1 5)(2)")
	f.Add("1 5 -1 2 -1 -2")
	f.Add("# comment\n\n2: (3)(4 5)")
	f.Add("1 -1 -2")
	f.Add(": ()")
	f.Add("(((")
	f.Add("-2")
	f.Add("999999999999999999999 -2")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := Read(strings.NewReader(input), Auto)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf strings.Builder
		if err := Write(&buf, db, Native); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		back, err := Read(strings.NewReader(buf.String()), Auto)
		if err != nil {
			t.Fatalf("round trip Read failed: %v\noriginal: %q\nwritten: %q", err, input, buf.String())
		}
		if len(back) != len(db) {
			t.Fatalf("round trip customer count %d != %d", len(back), len(db))
		}
		for i := range db {
			if seq.Compare(back[i].Pattern(), db[i].Pattern()) != 0 {
				t.Fatalf("round trip changed customer %d", i)
			}
		}
	})
}

// FuzzReadLimited throws arbitrary text at the bounded reader with tight
// limits: it must never panic, anything it rejects for size must match
// ErrInputTooLarge, and anything it accepts must also be accepted by the
// unbounded reader with the same customers.
func FuzzReadLimited(f *testing.F) {
	f.Add("1: (1 5)(2)")
	f.Add("1 5 -1 2 -1 -2")
	f.Add(strings.Repeat("1 ", 40) + "-2")
	f.Add("1: (" + strings.Repeat("7 ", 40) + "8)")
	f.Add(strings.Repeat("x", 200))
	f.Fuzz(func(t *testing.T, input string) {
		lim := Limits{MaxLineBytes: 64, MaxTokens: 16}
		db, err := ReadLimited(strings.NewReader(input), Auto, lim)
		if err != nil {
			var se *SizeError
			if errors.As(err, &se) && !errors.Is(err, ErrInputTooLarge) {
				t.Fatalf("SizeError %v does not match ErrInputTooLarge", se)
			}
			return
		}
		full, err := Read(strings.NewReader(input), Auto)
		if err != nil {
			t.Fatalf("bounded reader accepted what the unbounded rejects: %v", err)
		}
		if len(full) != len(db) {
			t.Fatalf("bounded %d customers vs unbounded %d", len(db), len(full))
		}
	})
}
