package data

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func TestNativeRoundTrip(t *testing.T) {
	db := testutil.Table1()
	var buf bytes.Buffer
	if err := Write(&buf, db, Native); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(db) {
		t.Fatalf("round trip %d customers, want %d", len(got), len(db))
	}
	for i := range db {
		if got[i].CID != db[i].CID || seq.Compare(got[i].Pattern(), db[i].Pattern()) != 0 {
			t.Errorf("customer %d differs: %s vs %s", i, got[i], db[i])
		}
	}
}

func TestSPMFRoundTrip(t *testing.T) {
	db := testutil.Table1()
	var buf bytes.Buffer
	if err := Write(&buf, db, SPMF); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-1") || !strings.Contains(buf.String(), "-2") {
		t.Fatalf("SPMF output missing delimiters: %q", buf.String())
	}
	got, err := Read(&buf, Auto)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db {
		if seq.Compare(got[i].Pattern(), db[i].Pattern()) != 0 {
			t.Errorf("customer %d differs", i)
		}
	}
	// SPMF assigns sequential CIDs.
	if got[0].CID != 1 || got[3].CID != 4 {
		t.Errorf("SPMF CIDs = %d..%d", got[0].CID, got[3].CID)
	}
}

// TestSPMFMultipleSequencesPerLine is the regression test for the parser
// dropping everything after the first -2 on a line: "1 -1 -2 2 -1 -2" is
// two one-item sequences, not one.
func TestSPMFMultipleSequencesPerLine(t *testing.T) {
	db, err := Read(strings.NewReader("1 -1 -2 2 -1 -2"), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 2 {
		t.Fatalf("parsed %d sequences, want 2", len(db))
	}
	if db[0].CID != 1 || db[1].CID != 2 {
		t.Errorf("CIDs = %d, %d, want 1, 2", db[0].CID, db[1].CID)
	}
	if s := db[0].Pattern().String(); s != "<(1)>" {
		t.Errorf("first sequence = %s, want <(1)>", s)
	}
	if s := db[1].Pattern().String(); s != "<(2)>" {
		t.Errorf("second sequence = %s, want <(2)>", s)
	}

	// Mixed with ordinary one-sequence lines: ids keep incrementing.
	db, err = Read(strings.NewReader("1 2 -1 -2\n3 -1 -2 4 -1 5 -1 -2\n"), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 3 || db[2].CID != 3 {
		t.Fatalf("parsed %d sequences (last cid %d), want 3 (cid 3)", len(db), db[len(db)-1].CID)
	}
	if s := db[2].Pattern().String(); s != "<(4)(5)>" {
		t.Errorf("third sequence = %s, want <(4)(5)>", s)
	}

	// Trailing tokens that never see a -2 are an error, not silently lost.
	for _, bad := range []string{"1 -1 -2 2", "1 -1 -2 2 -1", "1 -1 -2 -1 -2"} {
		if _, err := Read(strings.NewReader(bad), Auto); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestReadSkipsCommentsAndBlankLines(t *testing.T) {
	in := "# header\n\n1: (1 2)(3)\n# trailing\n2: (4)\n"
	db, err := Read(strings.NewReader(in), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 2 || db[0].CID != 1 || db[1].CID != 2 {
		t.Fatalf("parsed %d customers", len(db))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"x: (1)",  // bad cid
		"1: (0)",  // invalid item
		"1 -1",    // SPMF missing -2
		"-1 -2",   // SPMF empty itemset
		"1 -3 -2", // SPMF invalid token value
		"1 zz -2", // SPMF non-numeric
		"1: (1",   // unbalanced paren
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), Auto); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	r := rand.New(rand.NewSource(3))
	db := testutil.RandomDB(r, 20, 8, 5, 3)
	if err := WriteFile(path, db, Native); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db {
		if seq.Compare(got[i].Pattern(), db[i].Pattern()) != 0 {
			t.Fatalf("customer %d differs after file round trip", i)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDescribe(t *testing.T) {
	db := testutil.Table1()
	s := Describe(db)
	if s.Customers != 4 || s.Transactions != 14 {
		t.Errorf("Stats = %+v", s)
	}
	// Table 1 items: total occurrences = 9 + 4 + 3 + 8 = 24.
	if s.Items != 24 {
		t.Errorf("Items = %d, want 24", s.Items)
	}
	if s.DistinctItems != 8 || s.MaxItem != 8 {
		t.Errorf("DistinctItems = %d MaxItem = %d", s.DistinctItems, s.MaxItem)
	}
	if math.Abs(s.AvgTrans-3.5) > 1e-9 {
		t.Errorf("AvgTrans = %v", s.AvgTrans)
	}
	if s.MaxLen != 9 {
		t.Errorf("MaxLen = %d", s.MaxLen)
	}
	if !strings.Contains(s.String(), "4 customers") {
		t.Errorf("String = %q", s.String())
	}
	var empty Stats = Describe(nil)
	if empty.AvgTrans != 0 || empty.AvgItems != 0 {
		t.Error("empty stats must be zero")
	}
}
