package data

import (
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// TestRoundTripProperty: Write∘Read is the identity on canonical
// databases in both text formats, across a spread of generated shapes,
// with the format both given explicitly and auto-detected. Generated
// customer ids are the implicit 1-based ones, so SPMF (which does not
// store ids) round-trips them too.
func TestRoundTripProperty(t *testing.T) {
	for _, cfg := range []gen.Config{
		{NCust: 1, SLen: 1, TLen: 1, NItems: 3, Seed: 1},
		{NCust: 17, SLen: 2.5, TLen: 1.25, NItems: 10, Seed: 2},
		{NCust: 40, SLen: 5, TLen: 2, NItems: 40, Seed: 3},
		{NCust: 25, SLen: 8, TLen: 4, NItems: 200, Seed: 4},
	} {
		db, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []Format{Native, SPMF} {
			for _, readAs := range []Format{f, Auto} {
				var b strings.Builder
				if err := Write(&b, db, f); err != nil {
					t.Fatal(err)
				}
				got, err := Read(strings.NewReader(b.String()), readAs)
				if err != nil {
					t.Fatalf("seed=%d format=%d readAs=%d: %v", cfg.Seed, f, readAs, err)
				}
				assertSameDB(t, db, got)
			}
		}
	}
}

// TestParsersCanonicalizeIdentically: the same non-canonical input
// (unsorted transactions, duplicate items) presented to the native and
// the SPMF parser must produce the same canonical database — the
// canonicalization lives in the sequence constructors, not in either
// parser.
func TestParsersCanonicalizeIdentically(t *testing.T) {
	native := "1: (3 1 2 2)(5)(9 9 9)\n2: (7 4)\n"
	spmf := "3 1 2 2 -1 5 -1 9 9 9 -1 -2 7 4 -1 -2\n"
	fromNative, err := Read(strings.NewReader(native), Native)
	if err != nil {
		t.Fatal(err)
	}
	fromSPMF, err := Read(strings.NewReader(spmf), SPMF)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDB(t, fromNative, fromSPMF)
	want := mining.Database{
		seq.MustParseCustomerSeq(1, "(1 2 3)(5)(9)"),
		seq.MustParseCustomerSeq(2, "(4 7)"),
	}
	assertSameDB(t, want, fromNative)

	// Canonical form is also a Write fixpoint: re-serializing the parsed
	// database yields the canonical text, not the original.
	var b strings.Builder
	if err := Write(&b, fromSPMF, Native); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "1:(1 2 3)(5)(9)\n2:(4 7)\n"; got != want {
		t.Errorf("canonicalized output = %q, want %q", got, want)
	}
}

func assertSameDB(t *testing.T, want, got mining.Database) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d customers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].CID != want[i].CID {
			t.Errorf("customer %d: CID %d, want %d", i, got[i].CID, want[i].CID)
		}
		if seq.Compare(got[i].Pattern(), want[i].Pattern()) != 0 {
			t.Errorf("customer %d: %v, want %v", i, got[i].Pattern(), want[i].Pattern())
		}
	}
}
