// Input bounds and transient-failure retry for the dataset readers.
//
// Limits protect the process from hostile or corrupt input: a single
// line (native) or sequence line (SPMF) is bounded in bytes and in
// token count, so a malformed multi-gigabyte line fails fast with a
// typed *SizeError instead of exhausting memory inside the scanner or
// the parser. ReadRetry layers deterministic retry with backoff over a
// reader whose underlying medium can fail transiently (network mounts,
// the fault-injection harness); only errors declaring themselves
// Transient() are retried.
package data

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"github.com/disc-mining/disc/internal/mining"
)

// ErrInputTooLarge is the sentinel every *SizeError matches: the input
// exceeded a configured bound of Limits.
var ErrInputTooLarge = errors.New("data: input exceeds configured limit")

// SizeError reports which bound an input line broke.
type SizeError struct {
	Line  int    // 1-based line number, 0 when unknown (scanner overflow)
	What  string // "line bytes" or "tokens"
	Limit int
}

// Error implements error.
func (e *SizeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("data: line %d: %s exceed limit %d", e.Line, e.What, e.Limit)
	}
	return fmt.Sprintf("data: %s exceed limit %d", e.What, e.Limit)
}

// Is makes every SizeError match ErrInputTooLarge.
func (e *SizeError) Is(target error) bool { return target == ErrInputTooLarge }

// Limits bounds what a single input line may cost. The zero value means
// "use the default"; a negative value disables that bound.
type Limits struct {
	// MaxLineBytes caps one physical line. Default 1<<24 (16 MiB) — the
	// historical scanner buffer ceiling.
	MaxLineBytes int
	// MaxTokens caps the parsed tokens of one line: items plus
	// delimiters for SPMF, items for native. Default 1<<20.
	MaxTokens int
}

// DefaultLimits returns the bounds Read applies.
func DefaultLimits() Limits {
	return Limits{MaxLineBytes: 1 << 24, MaxTokens: 1 << 20}
}

// withDefaults resolves zero fields to the defaults and negative fields
// to "unbounded".
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxLineBytes == 0 {
		l.MaxLineBytes = d.MaxLineBytes
	}
	if l.MaxTokens == 0 {
		l.MaxTokens = d.MaxTokens
	}
	return l
}

// countTokens counts whitespace-separated fields without allocating —
// the pre-parse guard for SPMF lines (strings.Fields on an unbounded
// line would allocate proportionally to the attack).
func countTokens(s string) int {
	n := 0
	in := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n', '\v', '\f':
			in = false
		default:
			if !in {
				n++
				in = true
			}
		}
	}
	return n
}

// RetryOptions shapes ReadRetry. The zero value retries transient
// failures 3 times with 10ms exponential backoff, jittered by up to
// half of each delay.
type RetryOptions struct {
	// Attempts is the total number of tries (default 3).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per
	// attempt (default 10ms).
	Backoff time.Duration
	// Jitter is the fraction of each backoff delay randomized away: the
	// actual sleep is uniform in [d·(1−Jitter), d]. Jitter decorrelates a
	// fleet of jobs retrying against the same failed medium, so they do
	// not thunder back in lockstep. Zero selects the default 0.5;
	// negative disables jitter (exact exponential delays).
	Jitter float64
	// Rand replaces the jitter's randomness source in tests: a function
	// returning values in [0, 1). Nil means math/rand.
	Rand func() float64
	// Sleep replaces the interruptible wait in tests. When set, it is
	// called with the jittered delay and the context is only checked
	// between attempts, not during the sleep itself.
	Sleep func(time.Duration)
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	} else if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	return o
}

// delay computes the jittered exponential backoff before retry attempt
// (1-based): Backoff·2^(attempt−1), shrunk by a random fraction of up to
// Jitter.
func (o RetryOptions) delay(attempt int) time.Duration {
	d := o.Backoff << (attempt - 1)
	if o.Jitter > 0 {
		d = time.Duration(float64(d) * (1 - o.Jitter*o.Rand()))
	}
	return d
}

// wait sleeps for d or until ctx is done, whichever comes first. The
// Sleep test hook, when set, is not interruptible; ReadRetryContext
// still observes cancellation before the next attempt.
func (o RetryOptions) wait(ctx context.Context, d time.Duration) error {
	if o.Sleep != nil {
		o.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transient reports whether err declares itself retryable via a
// `Transient() bool` method anywhere in its chain (the contract of
// faultinject.TransientError and of network-backed readers).
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// ReadRetry parses a database from a re-openable source, retrying the
// whole read when it fails with a transient error. Parsing always
// restarts from a fresh reader — a transient failure mid-stream cannot
// corrupt or duplicate customers. Non-transient errors (syntax, size
// limits) fail immediately.
func ReadRetry(open func() (io.ReadCloser, error), f Format, lim Limits, ro RetryOptions) (mining.Database, error) {
	return ReadRetryContext(context.Background(), open, f, lim, ro)
}

// ReadRetryContext is ReadRetry honouring ctx: a cancellation or
// deadline interrupts the backoff sleep and stops further attempts,
// returning the context's error (wrapped with the last transient
// failure, when one was seen). The read in flight is not interrupted —
// cancellation granularity is the attempt boundary.
func ReadRetryContext(ctx context.Context, open func() (io.ReadCloser, error), f Format, lim Limits, ro RetryOptions) (mining.Database, error) {
	ro = ro.withDefaults()
	var lastErr error
	for attempt := 0; attempt < ro.Attempts; attempt++ {
		if attempt > 0 {
			if err := ro.wait(ctx, ro.delay(attempt)); err != nil {
				return nil, fmt.Errorf("data: read canceled after %d attempts: %w (last transient error: %w)",
					attempt, err, lastErr)
			}
		} else if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("data: read canceled: %w", err)
		}
		r, err := open()
		if err != nil {
			if Transient(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		db, err := ReadLimited(r, f, lim)
		r.Close()
		if err == nil {
			return db, nil
		}
		if !Transient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("data: giving up after %d attempts: %w", ro.Attempts, lastErr)
}

// ReadFileRetry is ReadRetry over a file path with auto-detection.
func ReadFileRetry(path string, lim Limits, ro RetryOptions) (mining.Database, error) {
	return ReadRetry(func() (io.ReadCloser, error) { return os.Open(path) }, Auto, lim, ro)
}

// sizeOverflow translates the scanner's token-too-long failure into the
// typed limit error.
func sizeOverflow(err error, lim Limits) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return &SizeError{What: "line bytes", Limit: lim.MaxLineBytes}
	}
	return fmt.Errorf("data: %w", err)
}
