package data

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func TestLineByteLimit(t *testing.T) {
	long := "1: (" + strings.Repeat("1 ", 4000) + "2)"
	if _, err := ReadLimited(strings.NewReader(long), Auto, Limits{MaxLineBytes: 64}); !errors.Is(err, ErrInputTooLarge) {
		t.Fatalf("err = %v, want ErrInputTooLarge", err)
	}
	var se *SizeError
	_, err := ReadLimited(strings.NewReader(long), Auto, Limits{MaxLineBytes: 64})
	if !errors.As(err, &se) || se.What != "line bytes" || se.Limit != 64 {
		t.Fatalf("SizeError = %+v", se)
	}
	// The same line passes when the bound allows it.
	if _, err := ReadLimited(strings.NewReader(long), Auto, Limits{MaxLineBytes: 1 << 16}); err != nil {
		t.Fatalf("within bound: %v", err)
	}
}

func TestTokenLimitSPMF(t *testing.T) {
	line := strings.Repeat("1 -1 ", 50) + "-2" // 101 tokens
	if _, err := ReadLimited(strings.NewReader(line), SPMF, Limits{MaxTokens: 100}); !errors.Is(err, ErrInputTooLarge) {
		t.Fatalf("err should match ErrInputTooLarge")
	}
	var se *SizeError
	_, err := ReadLimited(strings.NewReader("1 -1 -2\n"+line), SPMF, Limits{MaxTokens: 100})
	if !errors.As(err, &se) || se.What != "tokens" || se.Line != 2 {
		t.Fatalf("SizeError = %+v, want tokens at line 2", se)
	}
	if _, err := ReadLimited(strings.NewReader(line), SPMF, Limits{MaxTokens: 101}); err != nil {
		t.Fatalf("at bound: %v", err)
	}
}

func TestTokenLimitNative(t *testing.T) {
	var b strings.Builder
	b.WriteString("1: (")
	for i := 1; i <= 20; i++ { // 20 distinct items
		if i > 1 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	b.WriteByte(')')
	line := b.String()
	if _, err := ReadLimited(strings.NewReader(line), Auto, Limits{MaxTokens: 19}); !errors.Is(err, ErrInputTooLarge) {
		t.Fatal("err should match ErrInputTooLarge")
	}
	if _, err := ReadLimited(strings.NewReader(line), Auto, Limits{MaxTokens: 20}); err != nil {
		t.Fatalf("at bound: %v", err)
	}
}

func TestLimitsDefaultsAndDisable(t *testing.T) {
	in := "1: (1 2)(3)"
	// Zero-value Limits resolve to the defaults; negative disables.
	for _, lim := range []Limits{{}, {MaxLineBytes: -1, MaxTokens: -1}} {
		db, err := ReadLimited(strings.NewReader(in), Auto, lim)
		if err != nil || len(db) != 1 {
			t.Fatalf("lim %+v: (%d customers, %v)", lim, len(db), err)
		}
	}
	if d := DefaultLimits(); d.MaxLineBytes != 1<<24 || d.MaxTokens != 1<<20 {
		t.Fatalf("DefaultLimits = %+v", d)
	}
}

func TestCountTokens(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"", 0}, {"   ", 0}, {"1", 1}, {"1 -1 -2", 3}, {"  a\tb \r\n c ", 3}} {
		if got := countTokens(tc.in); got != tc.want {
			t.Errorf("countTokens(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// openFlaky returns an open function whose readers fail with injected
// transient errors according to the armed DataRead point.
func openFlaky(inj *faultinject.Injector, content string) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(inj.FlakyReader(strings.NewReader(content))), nil
	}
}

func TestReadRetryRecoversTransient(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testutil.Table1(), Native); err != nil {
		t.Fatal(err)
	}
	// First Read call of the stream fails; the retry re-opens and wins.
	inj := faultinject.New(1).Arm(faultinject.DataRead, faultinject.Spec{AfterN: 1})
	var slept []time.Duration
	db, err := ReadRetry(openFlaky(inj, buf.String()), Auto, Limits{},
		RetryOptions{Rand: func() float64 { return 0 }, // no jitter: exact exponential delays
			Sleep: func(d time.Duration) { slept = append(slept, d) }})
	if err != nil {
		t.Fatalf("ReadRetry: %v", err)
	}
	if len(db) != len(testutil.Table1()) {
		t.Fatalf("got %d customers", len(db))
	}
	for i, cs := range testutil.Table1() {
		if seq.Compare(db[i].Pattern(), cs.Pattern()) != 0 {
			t.Fatalf("customer %d differs after retry", i)
		}
	}
	if len(slept) != 1 || slept[0] != 10*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want one 10ms sleep", slept)
	}
}

func TestReadRetryExhaustsAttempts(t *testing.T) {
	// Every stream's first read fails: all attempts burn out.
	inj := faultinject.New(2).Arm(faultinject.DataRead, faultinject.Spec{Prob: 1})
	var slept []time.Duration
	_, err := ReadRetry(openFlaky(inj, "1: (1)"), Auto, Limits{},
		RetryOptions{Attempts: 3, Backoff: time.Millisecond,
			Rand:  func() float64 { return 0 },
			Sleep: func(d time.Duration) { slept = append(slept, d) }})
	if err == nil || !Transient(err) {
		t.Fatalf("err = %v, want wrapped transient failure", err)
	}
	var te *faultinject.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("cause not preserved: %v", err)
	}
	// Exponential backoff: 1ms then 2ms.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff sleeps = %v", slept)
	}
}

func TestReadRetryNonTransientFailsFast(t *testing.T) {
	opens := 0
	open := func() (io.ReadCloser, error) {
		opens++
		return io.NopCloser(strings.NewReader("1: (")), nil // syntax error
	}
	_, err := ReadRetry(open, Auto, Limits{}, RetryOptions{})
	if err == nil || Transient(err) {
		t.Fatalf("err = %v, want permanent parse error", err)
	}
	if opens != 1 {
		t.Errorf("opened %d times, want 1 (no retry on permanent errors)", opens)
	}
	// Size-limit breaches are permanent too.
	_, err = ReadRetry(func() (io.ReadCloser, error) {
		opens++
		return io.NopCloser(strings.NewReader("1: (1 2 3)")), nil
	}, Auto, Limits{MaxTokens: 2}, RetryOptions{})
	if !errors.Is(err, ErrInputTooLarge) {
		t.Fatalf("err = %v, want ErrInputTooLarge", err)
	}
}

func TestReadFileRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	if err := WriteFile(path, testutil.Table1(), Native); err != nil {
		t.Fatal(err)
	}
	db, err := ReadFileRetry(path, Limits{}, RetryOptions{})
	if err != nil || len(db) != 4 {
		t.Fatalf("ReadFileRetry = (%d, %v)", len(db), err)
	}
	if _, err := ReadFileRetry(filepath.Join(dir, "missing.txt"), Limits{}, RetryOptions{}); err == nil {
		t.Error("missing file should fail without retries")
	}
}

func TestReadRetryJitter(t *testing.T) {
	// A fixed randomness sequence pins the jittered delays exactly:
	// delay = backoff·2^(attempt−1)·(1 − Jitter·r).
	rands := []float64{0.5, 1}
	i := 0
	inj := faultinject.New(3).Arm(faultinject.DataRead, faultinject.Spec{Prob: 1})
	var slept []time.Duration
	_, err := ReadRetry(openFlaky(inj, "1: (1)"), Auto, Limits{},
		RetryOptions{Attempts: 3, Backoff: 8 * time.Millisecond,
			Rand:  func() float64 { r := rands[i]; i++; return r },
			Sleep: func(d time.Duration) { slept = append(slept, d) }})
	if err == nil || !Transient(err) {
		t.Fatalf("err = %v, want transient exhaustion", err)
	}
	// Default jitter 0.5: 8ms·(1−0.5·0.5)=6ms, then 16ms·(1−0.5·1)=8ms.
	if len(slept) != 2 || slept[0] != 6*time.Millisecond || slept[1] != 8*time.Millisecond {
		t.Errorf("jittered sleeps = %v, want [6ms 8ms]", slept)
	}

	// Negative Jitter disables: exact exponential delays regardless of
	// the randomness source.
	inj = faultinject.New(4).Arm(faultinject.DataRead, faultinject.Spec{Prob: 1})
	slept = nil
	_, _ = ReadRetry(openFlaky(inj, "1: (1)"), Auto, Limits{},
		RetryOptions{Attempts: 3, Backoff: 8 * time.Millisecond, Jitter: -1,
			Rand:  func() float64 { return 1 },
			Sleep: func(d time.Duration) { slept = append(slept, d) }})
	if len(slept) != 2 || slept[0] != 8*time.Millisecond || slept[1] != 16*time.Millisecond {
		t.Errorf("unjittered sleeps = %v, want [8ms 16ms]", slept)
	}
}

func TestReadRetryHonorsContext(t *testing.T) {
	// Cancellation before the first attempt stops without opening.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opens := 0
	open := func() (io.ReadCloser, error) {
		opens++
		return io.NopCloser(strings.NewReader("1: (1)")), nil
	}
	_, err := ReadRetryContext(ctx, open, Auto, Limits{}, RetryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if opens != 0 {
		t.Errorf("opened %d times after pre-canceled context, want 0", opens)
	}

	// Cancellation during the backoff wait stops between attempts: the
	// Sleep hook cancels, so attempt 2 never opens. The error carries
	// both the cancellation and the last transient failure.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	inj := faultinject.New(5).Arm(faultinject.DataRead, faultinject.Spec{Prob: 1})
	_, err = ReadRetryContext(ctx, openFlaky(inj, "1: (1)"), Auto, Limits{},
		RetryOptions{Attempts: 5, Sleep: func(time.Duration) { cancel() }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var te *faultinject.TransientError
	if !errors.As(err, &te) {
		t.Errorf("cancellation error should carry the last transient failure: %v", err)
	}
	if got := inj.Fired(faultinject.DataRead); got != 1 {
		t.Errorf("attempts after mid-backoff cancel = %d, want 1", got)
	}

	// A deadline expiring during a real (timer-based) wait interrupts
	// the sleep instead of running it to completion.
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	inj = faultinject.New(6).Arm(faultinject.DataRead, faultinject.Spec{Prob: 1})
	start := time.Now()
	_, err = ReadRetryContext(ctx, openFlaky(inj, "1: (1)"), Auto, Limits{},
		RetryOptions{Attempts: 3, Backoff: time.Hour})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline did not interrupt the backoff sleep (%v elapsed)", elapsed)
	}
}

func TestTransient(t *testing.T) {
	if Transient(errors.New("plain")) {
		t.Error("plain errors are not transient")
	}
	if !Transient(&faultinject.TransientError{Call: 1}) {
		t.Error("TransientError must be transient")
	}
	wrapped := &SizeError{Line: 1, What: "tokens", Limit: 2}
	if Transient(wrapped) {
		t.Error("SizeError is permanent")
	}
}
