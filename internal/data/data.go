// Package data reads and writes sequence databases in two text formats:
//
//   - native: one customer per line, "cid: (1 5)(2)(3 7)" — the paper's
//     notation with numeric items;
//   - SPMF: the format of the SPMF mining library, "1 5 -1 2 -1 3 7 -1 -2"
//     (itemsets separated by -1, sequences terminated by -2), one or more
//     sequences per line with implicit 1-based customer ids.
//
// Read auto-detects the format from the first data line.
package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Format selects a database text format.
type Format int

const (
	// Auto detects the format from the content (read side only).
	Auto Format = iota
	// Native is the "cid: (1 5)(2)" format.
	Native
	// SPMF is the "-1 / -2"-delimited format.
	SPMF
)

// Read parses a database from r, auto-detecting the format when f is
// Auto, under DefaultLimits.
func Read(r io.Reader, f Format) (mining.Database, error) {
	return ReadLimited(r, f, Limits{})
}

// ReadLimited is Read under explicit input bounds: a line longer than
// lim.MaxLineBytes or carrying more than lim.MaxTokens tokens fails
// with a *SizeError matching ErrInputTooLarge before the parser
// materializes it.
func ReadLimited(r io.Reader, f Format, lim Limits) (mining.Database, error) {
	lim = lim.withDefaults()
	maxBuf := lim.MaxLineBytes
	if maxBuf < 0 {
		maxBuf = int(^uint(0) >> 2) // bound disabled: cap only by the scanner
	}
	initBuf := 1 << 20
	if initBuf > maxBuf {
		initBuf = maxBuf
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, initBuf), maxBuf)
	var db mining.Database
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if f == Auto {
			if strings.ContainsRune(line, '(') {
				f = Native
			} else {
				f = SPMF
			}
		}
		switch f {
		case Native:
			cs, err := parseNative(line, len(db)+1)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
			if lim.MaxTokens > 0 && cs.Len() > lim.MaxTokens {
				return nil, &SizeError{Line: lineNo, What: "tokens", Limit: lim.MaxTokens}
			}
			db = append(db, cs)
		case SPMF:
			if lim.MaxTokens > 0 && countTokens(line) > lim.MaxTokens {
				return nil, &SizeError{Line: lineNo, What: "tokens", Limit: lim.MaxTokens}
			}
			css, err := parseSPMF(line, len(db)+1)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
			db = append(db, css...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, sizeOverflow(err, lim)
	}
	return db, nil
}

func parseNative(line string, defaultCID int) (*seq.CustomerSeq, error) {
	cid := defaultCID
	body := line
	if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsRune(line[:i], '(') {
		n, err := strconv.Atoi(strings.TrimSpace(line[:i]))
		if err != nil {
			return nil, fmt.Errorf("bad customer id %q", line[:i])
		}
		cid = n
		body = line[i+1:]
	}
	cs, err := seq.ParseCustomerSeq(cid, body)
	if err != nil {
		return nil, err
	}
	if cs.Len() == 0 {
		return nil, fmt.Errorf("empty sequence")
	}
	return cs, nil
}

// parseSPMF parses every sequence on one SPMF line. The format terminates
// each sequence with -2, and a line may carry several sequences (SPMF
// itself accepts that); each gets the next implicit customer id starting
// at cid. Tokens after the last -2 that do not form a terminated sequence
// are an error, never silently dropped.
func parseSPMF(line string, cid int) ([]*seq.CustomerSeq, error) {
	fields := strings.Fields(line)
	var out []*seq.CustomerSeq
	var sets []seq.Itemset
	var cur seq.Itemset
	for _, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad token %q", f)
		}
		switch {
		case n == -2:
			if len(cur) > 0 {
				sets = append(sets, cur)
			}
			if len(sets) == 0 {
				return nil, fmt.Errorf("empty sequence")
			}
			out = append(out, seq.NewCustomerSeq(cid, sets...))
			cid++
			sets, cur = nil, nil
		case n == -1:
			if len(cur) == 0 {
				return nil, fmt.Errorf("empty itemset before -1")
			}
			sets = append(sets, cur)
			cur = nil
		case n >= 1:
			cur = append(cur, seq.Item(n))
		default:
			return nil, fmt.Errorf("invalid item %d", n)
		}
	}
	if len(cur) > 0 || len(sets) > 0 {
		return nil, fmt.Errorf("sequence not terminated by -2")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sequence")
	}
	return out, nil
}

// Write renders db to w in the given format (Auto means Native).
func Write(w io.Writer, db mining.Database, f Format) error {
	bw := bufio.NewWriter(w)
	for _, cs := range db {
		switch f {
		case SPMF:
			for t := 0; t < cs.NTrans(); t++ {
				for _, it := range cs.Transaction(t) {
					fmt.Fprintf(bw, "%d ", it)
				}
				bw.WriteString("-1 ")
			}
			bw.WriteString("-2\n")
		default:
			fmt.Fprintf(bw, "%d:", cs.CID)
			for t := 0; t < cs.NTrans(); t++ {
				bw.WriteByte('(')
				for i, it := range cs.Transaction(t) {
					if i > 0 {
						bw.WriteByte(' ')
					}
					fmt.Fprintf(bw, "%d", it)
				}
				bw.WriteByte(')')
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFile loads a database from a file with auto-detection.
func ReadFile(path string) (mining.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, Auto)
}

// WriteFile saves a database to a file.
func WriteFile(path string, db mining.Database, f Format) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(out, db, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Stats summarizes a database.
type Stats struct {
	Customers     int
	Transactions  int
	Items         int // total item occurrences
	DistinctItems int
	MaxItem       seq.Item
	AvgTrans      float64 // transactions per customer
	AvgItems      float64 // items per transaction
	MaxLen        int     // longest customer sequence (items)
}

// Describe computes summary statistics.
func Describe(db mining.Database) Stats {
	var s Stats
	s.Customers = len(db)
	distinct := map[seq.Item]bool{}
	for _, cs := range db {
		s.Transactions += cs.NTrans()
		s.Items += cs.Len()
		if cs.Len() > s.MaxLen {
			s.MaxLen = cs.Len()
		}
		for _, it := range cs.Items() {
			distinct[it] = true
			if it > s.MaxItem {
				s.MaxItem = it
			}
		}
	}
	s.DistinctItems = len(distinct)
	if s.Customers > 0 {
		s.AvgTrans = float64(s.Transactions) / float64(s.Customers)
	}
	if s.Transactions > 0 {
		s.AvgItems = float64(s.Items) / float64(s.Transactions)
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d customers, %d transactions, %d items (%d distinct), avg %.2f trans/cust, %.2f items/trans",
		s.Customers, s.Transactions, s.Items, s.DistinctItems, s.AvgTrans, s.AvgItems)
}
