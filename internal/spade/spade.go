// Package spade implements the SPADE algorithm of Zaki (Machine Learning
// 2001), one of the baselines summarized in §1.1 of Chiu, Wu & Chen (ICDE
// 2004). Sequences are mined in the vertical format: every pattern carries
// an ID-list of (sid, eid) pairs recording each customer sequence (sid) and
// transaction (eid) where an occurrence of the pattern *ends* — exactly the
// paper's example: the ID-list of <(a, g)(b)> over Table 1 is
// <(1,2), (1,6), (4,3), (4,4)>.
//
// Frequent 1- and 2-sequences are found with horizontal scans (as Zaki
// does); longer sequences are enumerated depth-first over prefix-based
// equivalence classes, joining the ID-lists of class siblings:
//
//   - equality join: occurrences ending in the same transaction (grows the
//     last itemset, an i-extension);
//   - temporal join: occurrences of the second atom ending strictly after
//     an occurrence of the first (appends a new itemset, an s-extension).
package spade

import (
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Miner is the SPADE miner.
type Miner struct{}

func init() {
	mining.Register("spade", func() mining.Miner { return Miner{} })
}

// Name implements mining.Miner.
func (Miner) Name() string { return "spade" }

// pair is one ID-list entry: the customer sequence index and the 0-based
// transaction index where the occurrence ends.
type pair struct {
	sid int32
	eid int32
}

// IDList is a pattern's list of occurrence ends, sorted by (sid, eid) with
// no duplicates.
type IDList []pair

// Support returns the number of distinct customer sequences in the list.
func (l IDList) Support() int {
	n := 0
	for i, p := range l {
		if i == 0 || p.sid != l[i-1].sid {
			n++
		}
	}
	return n
}

// EqualityJoin returns the intersection of two ID-lists: occurrences
// ending in the same (sid, eid).
func EqualityJoin(a, b IDList) IDList {
	var out IDList
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].sid < b[j].sid || (a[i].sid == b[j].sid && a[i].eid < b[j].eid):
			i++
		case b[j].sid < a[i].sid || (b[j].sid == a[i].sid && b[j].eid < a[i].eid):
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// TemporalJoin returns the entries (sid, e_b) of b such that a contains an
// entry (sid, e_a) with e_a < e_b.
func TemporalJoin(a, b IDList) IDList {
	var out IDList
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].sid < b[j].sid:
			i++
		case a[i].sid > b[j].sid:
			j++
		default:
			// a[i] is the first entry of this sid in a (we never advance i
			// past the first one before draining b's sid run), so a[i].eid
			// is the minimal end of the first atom in this customer.
			if b[j].eid > a[i].eid {
				out = append(out, b[j])
			}
			j++
		}
	}
	return out
}

// atom is one member of an equivalence class: the class prefix extended by
// a single item, either into the prefix's last itemset (itemsetAtom) or as
// a new itemset.
type atom struct {
	item        seq.Item
	itemsetAtom bool // true: i-atom (grows the last itemset)
	pattern     seq.Pattern
	list        IDList
}

// Mine implements mining.Miner.
func (Miner) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	res := mining.NewResult()
	maxItem := db.MaxItem()

	// Horizontal pass: frequent 1-sequences and their vertical ID-lists.
	sup := make([]int, maxItem+1)
	seen := make([]bool, maxItem+1)
	var scratch []seq.Item
	for _, cs := range db {
		scratch = cs.DistinctItems(scratch[:0], seen)
		for _, it := range scratch {
			sup[it]++
		}
	}
	f1 := make([]seq.Item, 0)
	freq1 := make([]bool, maxItem+1)
	for x := seq.Item(1); x <= maxItem; x++ {
		if sup[x] >= minSup {
			f1 = append(f1, x)
			freq1[x] = true
			res.Add(seq.NewPattern(seq.Itemset{x}), sup[x])
		}
	}
	lists := make([]IDList, maxItem+1)
	for sidx, cs := range db {
		for t := 0; t < cs.NTrans(); t++ {
			for _, x := range cs.Transaction(t) {
				if freq1[x] {
					lists[x] = append(lists[x], pair{sid: int32(sidx), eid: int32(t)})
				}
			}
		}
	}

	// Horizontal pass for frequent 2-sequences: pair counting avoids the
	// quadratic number of F1 x F1 joins.
	supS, supI := count2(db, maxItem, freq1)

	// Build the <(x)>-classes and recurse.
	for _, x := range f1 {
		px := seq.NewPattern(seq.Itemset{x})
		var members []atom
		for _, y := range f1 {
			if y > x {
				if s := int(supI[int(x)*(int(maxItem)+1)+int(y)]); s >= minSup {
					l := EqualityJoin(lists[x], lists[y])
					members = append(members, atom{item: y, itemsetAtom: true, pattern: px.ExtendI(y), list: l})
				}
			}
			if s := int(supS[int(x)*(int(maxItem)+1)+int(y)]); s >= minSup {
				l := TemporalJoin(lists[x], lists[y])
				members = append(members, atom{item: y, pattern: px.ExtendS(y), list: l})
			}
		}
		for _, m := range members {
			res.Add(m.pattern, m.list.Support())
		}
		mineClass(members, minSup, res)
	}
	return res, nil
}

// mineClass recursively processes one equivalence class: for each member A
// it derives the child class of A by joining A with every member B.
func mineClass(members []atom, minSup int, res *mining.Result) {
	for _, a := range members {
		var children []atom
		for _, b := range members {
			for _, c := range joinAtoms(a, b) {
				if c.list.Support() >= minSup {
					res.Add(c.pattern, c.list.Support())
					children = append(children, c)
				}
			}
		}
		mineClass(children, minSup, res)
	}
}

// joinAtoms applies Zaki's join table to two members of the same class,
// producing the candidate extensions of a's pattern.
func joinAtoms(a, b atom) []atom {
	switch {
	case a.itemsetAtom && b.itemsetAtom:
		// I x I -> I, once per unordered pair.
		if b.item > a.item {
			return []atom{{
				item: b.item, itemsetAtom: true,
				pattern: a.pattern.ExtendI(b.item),
				list:    EqualityJoin(a.list, b.list),
			}}
		}
		return nil
	case a.itemsetAtom && !b.itemsetAtom:
		// I x S -> S appended after a's pattern.
		return []atom{{
			item:    b.item,
			pattern: a.pattern.ExtendS(b.item),
			list:    TemporalJoin(a.list, b.list),
		}}
	case !a.itemsetAtom && b.itemsetAtom:
		// S x I: not joinable; covered by I x S from the other side.
		return nil
	default:
		// S x S -> temporal S always (including the self-join), plus the
		// equality I when b's item can grow a's last singleton itemset.
		out := []atom{{
			item:    b.item,
			pattern: a.pattern.ExtendS(b.item),
			list:    TemporalJoin(a.list, b.list),
		}}
		if b.item > a.item {
			out = append(out, atom{
				item: b.item, itemsetAtom: true,
				pattern: a.pattern.ExtendI(b.item),
				list:    EqualityJoin(a.list, b.list),
			})
		}
		return out
	}
}

// count2 counts the supports of every 2-sequence over frequent items in one
// horizontal scan. It returns flat matrices indexed x*(maxItem+1)+y for the
// s-form <(x)(y)> and the i-form <(x, y)> (the latter only filled for
// x < y).
func count2(db mining.Database, maxItem seq.Item, freq1 []bool) (supS, supI []int32) {
	n := int(maxItem) + 1
	supS = make([]int32, n*n)
	supI = make([]int32, n*n)
	stampI := make([]int32, n*n) // last sid+1 that touched the i-cell
	minEid := make([]int32, n)
	var items []seq.Item
	seen := make([]bool, n)
	for sidx, cs := range db {
		items = cs.DistinctItems(items[:0], seen)
		// Track each frequent item's first and last transaction.
		for _, x := range items {
			minEid[x] = -1
		}
		maxEid := make(map[seq.Item]int32, len(items))
		for t := 0; t < cs.NTrans(); t++ {
			for _, x := range cs.Transaction(t) {
				if !freq1[x] {
					continue
				}
				if minEid[x] < 0 {
					minEid[x] = int32(t)
				}
				maxEid[x] = int32(t)
			}
		}
		// s-pairs: (x, y) supported iff x first occurs before y's last
		// occurrence.
		for _, x := range items {
			if !freq1[x] || minEid[x] < 0 {
				continue
			}
			for _, y := range items {
				if !freq1[y] {
					continue
				}
				if maxEid[y] > minEid[x] {
					supS[int(x)*n+int(y)]++
				}
			}
		}
		// i-pairs: distinct co-occurrences within one transaction,
		// deduplicated per customer by stamping.
		for t := 0; t < cs.NTrans(); t++ {
			tr := cs.Transaction(t)
			for i := 0; i < len(tr); i++ {
				if !freq1[tr[i]] {
					continue
				}
				for j := i + 1; j < len(tr); j++ {
					if !freq1[tr[j]] {
						continue
					}
					cell := int(tr[i])*n + int(tr[j])
					if stampI[cell] != int32(sidx)+1 {
						stampI[cell] = int32(sidx) + 1
						supI[cell]++
					}
				}
			}
		}
	}
	return supS, supI
}
