package spade

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// idListOf computes a pattern's ID-list the slow way for golden checks:
// every (sid, eid) where the pattern occurs ending at eid. sid here is the
// 1-based CID to match the paper's notation.
func idListOf(db mining.Database, p seq.Pattern) []pair {
	var out []pair
	sets := p.Itemsets()
	for sidx, cs := range db {
		for e := 0; e < cs.NTrans(); e++ {
			if !cs.Transaction(e).Contains(sets[len(sets)-1]) {
				continue
			}
			if prefixMatchesBefore(cs, sets[:len(sets)-1], e) {
				out = append(out, pair{sid: int32(sidx) + 1, eid: int32(e) + 1})
			}
		}
	}
	return out
}

func prefixMatchesBefore(cs *seq.CustomerSeq, sets []seq.Itemset, before int) bool {
	t := 0
	for _, s := range sets {
		for ; t < before; t++ {
			if cs.Transaction(t).Contains(s) {
				break
			}
		}
		if t >= before {
			return false
		}
		t++
	}
	return true
}

// TestIDListPaperExample reproduces the §1.1 example: the ID-list of
// <(a, g)(b)> over Table 1 is <(1,2), (1,6), (4,3), (4,4)> (1-based).
func TestIDListPaperExample(t *testing.T) {
	got := idListOf(testutil.Table1(), seq.MustParsePattern("(a, g)(b)"))
	want := []pair{{1, 2}, {1, 6}, {4, 3}, {4, 4}}
	if len(got) != len(want) {
		t.Fatalf("ID-list = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ID-list = %v, want %v", got, want)
		}
	}
}

// TestTemporalJoinPaperExample reproduces the §1.1 merge: joining the
// ID-lists of <(a, g)(h)> = <(1,3), (4,3)> and <(a, g)(f)> = <(1,4), (1,6),
// (4,3), (4,4)> yields <(a, g)(h)(f)> = <(1,4), (1,6), (4,4)> with support
// 2.
func TestTemporalJoinPaperExample(t *testing.T) {
	db := testutil.Table1()
	lh := toIDList(idListOf(db, seq.MustParsePattern("(a, g)(h)")))
	lf := toIDList(idListOf(db, seq.MustParsePattern("(a, g)(f)")))
	got := TemporalJoin(lh, lf)
	want := IDList{{1, 4}, {1, 6}, {4, 4}}
	if len(got) != len(want) {
		t.Fatalf("TemporalJoin = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TemporalJoin = %v, want %v", got, want)
		}
	}
	if got.Support() != 2 {
		t.Errorf("support = %d, want 2", got.Support())
	}
}

func toIDList(ps []pair) IDList { return IDList(ps) }

func TestEqualityJoin(t *testing.T) {
	a := IDList{{1, 1}, {1, 3}, {2, 2}, {4, 5}}
	b := IDList{{1, 3}, {2, 1}, {2, 2}, {3, 1}, {4, 5}}
	got := EqualityJoin(a, b)
	want := IDList{{1, 3}, {2, 2}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("EqualityJoin = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EqualityJoin = %v, want %v", got, want)
		}
	}
	if got.Support() != 3 {
		t.Errorf("support = %d", got.Support())
	}
	if len(EqualityJoin(a, nil)) != 0 || len(TemporalJoin(nil, b)) != 0 {
		t.Error("joins with empty lists must be empty")
	}
}

func TestTemporalJoinUsesEarliestEnd(t *testing.T) {
	// a has ends (1,2) and (1,5); b has (1,3): 3 > 2, so the join keeps it
	// even though 3 < 5.
	a := IDList{{1, 2}, {1, 5}}
	b := IDList{{1, 3}}
	got := TemporalJoin(a, b)
	if len(got) != 1 || got[0] != (pair{1, 3}) {
		t.Fatalf("TemporalJoin = %v", got)
	}
}

func TestTable1Golden(t *testing.T) {
	db := testutil.Table1()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, 2)
}

func TestTable6Golden(t *testing.T) {
	db := testutil.Table6()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, 3)
}

func TestRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 60; i++ {
		db := testutil.RandomDB(r, 6+r.Intn(8), 5, 4, 3)
		minSup := 1 + r.Intn(4)
		ref, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, minSup)
	}
}

func TestSkewedAgainstLevelWise(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		db := testutil.SkewedRandomDB(r, 60, 12, 6, 4)
		minSup := 3 + r.Intn(6)
		ref, err := bruteforce.LevelWise{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, minSup)
	}
}

func TestDegenerate(t *testing.T) {
	res, err := Miner{}.Mine(nil, 1)
	if err != nil || res.Len() != 0 {
		t.Errorf("empty db: %v, %d", err, res.Len())
	}
}
