package weighted

import (
	"math"
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func TestWeightsAccessors(t *testing.T) {
	w := Weights{0, 1.0, 0.5, 2.0}
	if w.Of(2) != 0.5 || w.Of(9) != 0 {
		t.Errorf("Of = %v, %v", w.Of(2), w.Of(9))
	}
	if w.Max() != 2.0 {
		t.Errorf("Max = %v", w.Max())
	}
	p := seq.MustParsePattern("(a)(c)") // items 1 and 3
	if got := w.PatternWeight(p); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("PatternWeight = %v, want 1.5", got)
	}
	if w.PatternWeight(seq.Pattern{}) != 0 {
		t.Error("empty pattern weight must be 0")
	}
}

// TestHandComputed: Table 1 with weights making h (item 8) heavy. The
// pattern <(h)> has support 2 and weight 3.0 => wsup 6; <(b)> has support 4
// and weight 1.0 => wsup 4.
func TestHandComputed(t *testing.T) {
	db := testutil.Table1()
	w := make(Weights, 9)
	for i := range w {
		w[i] = 1.0
	}
	w[8] = 3.0 // h
	out, err := Miner{Weights: w}.Mine(db, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]Pattern{}
	for _, p := range out {
		found[p.Pattern.Letters()] = p
	}
	h, ok := found["<(h)>"]
	if !ok || h.Support != 2 || math.Abs(h.WeightedSupport-6.0) > 1e-9 {
		t.Errorf("<(h)> = %+v, ok=%v", h, ok)
	}
	if _, ok := found["<(b)>"]; ok {
		t.Error("<(b)> has wsup 4 < 5 and must be filtered")
	}
	// Non-anti-monotone behaviour: <(a, g)(h)(f)> (4 items incl. h) has
	// support 2, weight (1+1+3+1)/4 = 1.5, wsup 3.0 — below τ even though
	// a heavier subsequence <(h)> qualifies.
	if _, ok := found["<(a, g)(h)(f)>"]; ok {
		t.Error("<(a, g)(h)(f)> must be filtered at τ=5")
	}
}

// TestSoundAndComplete compares against a brute-force weighted enumeration.
func TestSoundAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for i := 0; i < 25; i++ {
		db := testutil.RandomDB(r, 8, 5, 4, 3)
		w := make(Weights, 6)
		for j := 1; j < len(w); j++ {
			w[j] = 0.25 + 2*r.Float64()
		}
		tau := 1.0 + 3*r.Float64()
		got, err := Miner{Weights: w}.Mine(db, tau)
		if err != nil {
			t.Fatal(err)
		}
		gotSet := map[string]float64{}
		for _, p := range got {
			if p.WeightedSupport < tau {
				t.Fatalf("unsound: %s wsup %v < τ %v", p.Pattern.Letters(), p.WeightedSupport, tau)
			}
			gotSet[p.Pattern.Key()] = p.WeightedSupport
		}
		// Complete: enumerate everything with support >= 1 and re-score.
		all, err := bruteforce.Exhaustive{}.Mine(db, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, pc := range all.Sorted() {
			ws := float64(pc.Support) * w.PatternWeight(pc.Pattern)
			if ws >= tau {
				if _, ok := gotSet[pc.Pattern.Key()]; !ok {
					t.Fatalf("missing weighted-frequent %s (wsup %v >= τ %v)", pc.Pattern.Letters(), ws, tau)
				}
			}
		}
	}
}

func TestSortedByWeightedSupport(t *testing.T) {
	db := testutil.Table1()
	w := make(Weights, 9)
	for i := range w {
		w[i] = 1.0
	}
	out, err := Miner{Weights: w}.Mine(db, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].WeightedSupport > out[i-1].WeightedSupport {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := (Miner{Weights: Weights{0, 1}}).Mine(nil, 0); err == nil {
		t.Error("non-positive tau must error")
	}
	if _, err := (Miner{Weights: Weights{0, 0}}).Mine(nil, 1); err == nil {
		t.Error("all-zero weights must error")
	}
}
