// Package weighted implements the weighting extension sketched in §5 of
// Chiu, Wu & Chen (ICDE 2004): in applications such as web traversal or
// gene analysis a pattern matters "not only for the number of its
// occurrences but also its weight, defined by a specific application".
//
// A pattern P over item weights w is scored by its weighted support
//
//	wsup(P) = support(P) · weight(P),  weight(P) = mean of w(x) over P's items,
//
// and is weighted-frequent when wsup(P) ≥ τ. Weighted frequency is not
// anti-monotone (a heavier superset can pass while its prefix fails), which
// is exactly the situation the paper argues DISC tolerates: DISC compares
// same-length sequences instead of pruning by shorter ones. The miner here
// uses the standard sound relaxation: every weighted-frequent pattern has
// support ≥ ⌈τ / maxWeight⌉, so a plain miner (DISC-all by default) runs at
// that relaxed threshold and the results are re-scored and filtered — no
// weighted-frequent pattern can be missed.
package weighted

import (
	"fmt"
	"math"
	"sort"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Weights assigns a non-negative weight to every item (indexed by item id;
// index 0 unused). Items beyond the slice default to weight 0.
type Weights []float64

// Of returns the weight of item x.
func (w Weights) Of(x seq.Item) float64 {
	if int(x) >= len(w) {
		return 0
	}
	return w[x]
}

// PatternWeight returns the mean item weight of p.
func (w Weights) PatternWeight(p seq.Pattern) float64 {
	if p.Len() == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < p.Len(); i++ {
		sum += w.Of(p.ItemAt(i))
	}
	return sum / float64(p.Len())
}

// Max returns the largest weight.
func (w Weights) Max() float64 {
	m := 0.0
	for _, x := range w[min(1, len(w)):] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pattern is one weighted-frequent sequence.
type Pattern struct {
	Pattern         seq.Pattern
	Support         int
	Weight          float64
	WeightedSupport float64
}

// Miner mines weighted-frequent sequences.
type Miner struct {
	// Base is the unweighted miner used at the relaxed threshold;
	// DISC-all when nil.
	Base mining.Miner
	// Weights are the application-defined item weights.
	Weights Weights
}

// Mine returns all patterns with weighted support at least tau, sorted by
// descending weighted support (ties in ascending comparative order).
func (m Miner) Mine(db mining.Database, tau float64) ([]Pattern, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("weighted: threshold must be positive, got %v", tau)
	}
	maxW := m.Weights.Max()
	if maxW <= 0 {
		return nil, fmt.Errorf("weighted: all item weights are zero")
	}
	base := m.Base
	if base == nil {
		base = core.New()
	}
	// Sound relaxation: wsup(P) = sup(P)·weight(P) ≤ sup(P)·maxW, so
	// wsup ≥ τ forces sup ≥ ⌈τ/maxW⌉.
	minSup := int(math.Ceil(tau / maxW))
	if minSup < 1 {
		minSup = 1
	}
	res, err := base.Mine(db, minSup)
	if err != nil {
		return nil, err
	}
	var out []Pattern
	for _, pc := range res.Sorted() {
		w := m.Weights.PatternWeight(pc.Pattern)
		ws := float64(pc.Support) * w
		if ws >= tau {
			out = append(out, Pattern{Pattern: pc.Pattern, Support: pc.Support, Weight: w, WeightedSupport: ws})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WeightedSupport != out[j].WeightedSupport {
			return out[i].WeightedSupport > out[j].WeightedSupport
		}
		return seq.Compare(out[i].Pattern, out[j].Pattern) < 0
	})
	return out, nil
}
