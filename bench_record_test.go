// The recorded benchmark trajectory. BenchmarkMine is the canonical
// engine benchmark at three database scales; TestBenchRecord runs it
// programmatically for both tree engines (the slab default and the seed
// pointer oracle behind Options.PointerTree) and writes the measurements
// to a BENCH_*.json file at the repo root — the machine-readable perf
// history every engine PR appends to. See EXPERIMENTS.md ("Recorded
// benchmark trajectory") for the file format.
//
//	make bench-record            # writes BENCH_pr6.json
//	go test -bench BenchmarkMine # just the default engine, human-readable
package disc

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/disc-mining/disc/internal/testutil"
)

// benchScale is one point of the trajectory: an engine-dominated skewed
// workload (small item alphabet, deep partition recursion, many DISC
// rounds — the same family as the instrumentation-overhead guard) at a
// fixed customer count. The paper-figure workloads in bench_test.go
// measure end-to-end mining where result-set construction dominates;
// this trajectory isolates the engine core, which is what the slab tree
// and round arenas change.
type benchScale struct {
	Name  string
	NCust int
}

var benchScales = []benchScale{
	{"small", 200},
	{"medium", 400},
	{"large", 600},
}

const scaleMinSup = 4

var (
	scaleOnce sync.Once
	scaleDBs  map[string]Database
)

func scaleWorkloads(tb testing.TB) map[string]Database {
	tb.Helper()
	scaleOnce.Do(func() {
		scaleDBs = make(map[string]Database, len(benchScales))
		for _, sc := range benchScales {
			r := rand.New(rand.NewSource(77))
			scaleDBs[sc.Name] = Database(testutil.SkewedRandomDB(r, sc.NCust, 14, 8, 5))
		}
	})
	return scaleDBs
}

// BenchmarkMine measures the default engine (slab tree + round arenas)
// at the three trajectory scales.
func BenchmarkMine(b *testing.B) {
	dbs := scaleWorkloads(b)
	for _, sc := range benchScales {
		db := dbs[sc.Name]
		b.Run(sc.Name, func(b *testing.B) {
			benchMiner(b, NewDISCAll(DefaultOptions()), db, scaleMinSup)
		})
	}
}

// engineMeasure is one (scale, engine) cell of the recorded trajectory.
type engineMeasure struct {
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	Patterns       int     `json:"patterns"`
	PatternsPerSec float64 `json:"patterns_per_sec"`
}

// scaleRecord is one scale's measurements plus the slab-vs-pointer delta
// (negative percentages are improvements of the slab engine).
type scaleRecord struct {
	Scale    string                   `json:"scale"`
	NCust    int                      `json:"ncust"`
	MinSup   int                      `json:"minsup"`
	Engines  map[string]engineMeasure `json:"engines"`
	DeltaPct map[string]float64       `json:"delta_pct"`
}

// benchFile is the BENCH_*.json schema (documented in EXPERIMENTS.md).
type benchFile struct {
	PR        int           `json:"pr"`
	Benchmark string        `json:"benchmark"`
	Workload  string        `json:"workload"`
	Go        string        `json:"go"`
	MaxProcs  int           `json:"gomaxprocs"`
	Scales    []scaleRecord `json:"scales"`
}

// TestBenchRecord runs BenchmarkMine for both tree engines at every
// trajectory scale and writes the JSON record to the path named by
// DISC_BENCH_RECORD. DISC_BENCH_SUMMARY additionally writes a markdown
// comparison table (the CI job points it at $GITHUB_STEP_SUMMARY), and
// DISC_BENCH_ENFORCE=1 turns the PR-6 acceptance thresholds into test
// failures: at the medium and large scales the slab engine must cut
// allocs/op by at least 25% and improve ns/op versus the pointer engine.
func TestBenchRecord(t *testing.T) {
	outPath := os.Getenv("DISC_BENCH_RECORD")
	if outPath == "" {
		t.Skip("set DISC_BENCH_RECORD=<path> to record the benchmark trajectory")
	}
	dbs := scaleWorkloads(t)
	record := benchFile{
		PR:        6,
		Benchmark: "BenchmarkMine",
		Workload:  "testutil.SkewedRandomDB, seed 77, nitems 14, minsup 4",
		Go:        runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, sc := range benchScales {
		db := dbs[sc.Name]
		minSup := scaleMinSup
		engines := map[string]engineMeasure{}
		for _, eng := range []struct {
			name    string
			pointer bool
		}{{"slab", false}, {"pointer", true}} {
			opts := DefaultOptions()
			opts.PointerTree = eng.pointer
			var patterns int
			// Best of three: at these op times a single testing.Benchmark
			// run measures one iteration, so the clock reading carries
			// scheduler noise; the minimum damps it. allocs/op and B/op are
			// deterministic — any run reports the same figures.
			var m engineMeasure
			for rep := 0; rep < 3; rep++ {
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						res, err := NewDISCAll(opts).Mine(db, minSup)
						if err != nil {
							b.Fatal(err)
						}
						patterns = res.Len()
					}
				})
				if m.NsPerOp == 0 || r.NsPerOp() < m.NsPerOp {
					m.NsPerOp = r.NsPerOp()
					m.AllocsPerOp = r.AllocsPerOp()
					m.BytesPerOp = r.AllocedBytesPerOp()
				}
			}
			m.Patterns = patterns
			if m.NsPerOp > 0 {
				m.PatternsPerSec = float64(patterns) / (float64(m.NsPerOp) / 1e9)
			}
			engines[eng.name] = m
			t.Logf("%s/%s: %d ns/op, %d allocs/op, %d B/op, %d patterns",
				sc.Name, eng.name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, patterns)
		}
		slab, ptr := engines["slab"], engines["pointer"]
		if slab.Patterns != ptr.Patterns {
			t.Fatalf("%s: engines disagree on pattern count: slab=%d pointer=%d",
				sc.Name, slab.Patterns, ptr.Patterns)
		}
		rec := scaleRecord{
			Scale: sc.Name, NCust: sc.NCust, MinSup: minSup, Engines: engines,
			DeltaPct: map[string]float64{
				"ns":     pctDelta(slab.NsPerOp, ptr.NsPerOp),
				"allocs": pctDelta(slab.AllocsPerOp, ptr.AllocsPerOp),
				"bytes":  pctDelta(slab.BytesPerOp, ptr.BytesPerOp),
			},
		}
		record.Scales = append(record.Scales, rec)
		if os.Getenv("DISC_BENCH_ENFORCE") != "" && sc.Name != "small" {
			if d := rec.DeltaPct["allocs"]; d > -25 {
				t.Errorf("%s: slab engine cuts allocs/op by %.1f%%, acceptance requires >= 25%%", sc.Name, -d)
			}
			if d := rec.DeltaPct["ns"]; d >= 0 {
				t.Errorf("%s: slab engine ns/op delta %+.1f%%, acceptance requires an improvement", sc.Name, d)
			}
		}
	}
	data, err := json.MarshalIndent(&record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", outPath)
	if sumPath := os.Getenv("DISC_BENCH_SUMMARY"); sumPath != "" {
		if err := writeBenchSummary(sumPath, &record); err != nil {
			t.Fatal(err)
		}
	}
}

func pctDelta(newV, oldV int64) float64 {
	if oldV == 0 {
		return 0
	}
	return (float64(newV)/float64(oldV) - 1) * 100
}

// writeBenchSummary appends a markdown slab-vs-pointer comparison table
// to path (the benchstat-style delta step of the CI bench job).
func writeBenchSummary(path string, rec *benchFile) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "## %s: slab tree vs seed pointer tree\n\n", rec.Benchmark)
	fmt.Fprintf(f, "Workload: %s (%s, GOMAXPROCS=%d)\n\n", rec.Workload, rec.Go, rec.MaxProcs)
	fmt.Fprintln(f, "| scale | engine | ns/op | allocs/op | B/op | patterns/s |")
	fmt.Fprintln(f, "|---|---|---:|---:|---:|---:|")
	for _, sc := range rec.Scales {
		for _, eng := range []string{"pointer", "slab"} {
			m := sc.Engines[eng]
			fmt.Fprintf(f, "| %s | %s | %d | %d | %d | %.0f |\n",
				sc.Scale, eng, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.PatternsPerSec)
		}
		fmt.Fprintf(f, "| %s | **delta** | %+.1f%% | %+.1f%% | %+.1f%% | |\n",
			sc.Scale, sc.DeltaPct["ns"], sc.DeltaPct["allocs"], sc.DeltaPct["bytes"])
	}
	fmt.Fprintln(f)
	return nil
}
